package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpunoc/internal/core"
	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
	"gpunoc/internal/resultstore"
)

// newTestServer wires a server over the given (context-free) compute
// function with the zero serverConfig — no deadline, no admission — and
// returns it with its registry and a running httptest listener.
func newTestServer(t *testing.T, compute func(resultstore.Key) (*resultstore.Entry, error)) (*httptest.Server, *obs.Registry) {
	t.Helper()
	ts, _, reg := newConfiguredServer(t, serverConfig{},
		func(_ context.Context, key resultstore.Key) (*resultstore.Entry, error) { return compute(key) })
	return ts, reg
}

// newConfiguredServer is the full-control variant: explicit ingress
// config and a context-aware compute, with the store exposed so tests
// can Wait() for detached fills.
func newConfiguredServer(t *testing.T, cfg serverConfig, compute func(context.Context, resultstore.Key) (*resultstore.Entry, error)) (*httptest.Server, *resultstore.Store, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	t0 := time.Now()
	store, err := resultstore.New(resultstore.Options{
		Compute: compute,
		Obs:     reg.Scope("resultstore"),
		Clock:   func() time.Duration { return time.Since(t0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(store, reg, cfg).handler())
	t.Cleanup(ts.Close)
	return ts, store, reg
}

// get fetches a URL and returns status, X-Cache header, and body.
func get(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), body
}

// TestServeConcurrent is the load harness: hundreds of overlapping
// requests spread over a handful of cold keys, against a slow stub
// simulation. Exactly one simulation must run per key, and every
// response for a key must carry identical bytes. Run under -race this
// also exercises the store's publication ordering.
func TestServeConcurrent(t *testing.T) {
	var mu sync.Mutex
	calls := map[resultstore.Key]int{}
	compute := func(key resultstore.Key) (*resultstore.Entry, error) {
		mu.Lock()
		calls[key]++
		mu.Unlock()
		// Slow enough that the request wave piles onto the in-flight
		// call rather than finding a warm cache.
		time.Sleep(50 * time.Millisecond)
		body := []byte(fmt.Sprintf("{\"key\":%q}\n", key))
		return &resultstore.Entry{JSON: body, CSV: body, Text: body, Markdown: body}, nil
	}
	ts, reg := newTestServer(t, compute)

	exps := []string{"fig1", "fig2", "fig3", "table1"}
	const perKey = 75 // 4 keys x 75 = 300 overlapping requests
	type reply struct {
		exp   string
		cache string
		body  []byte
	}
	replies := make([]reply, len(exps)*perKey)
	var wg sync.WaitGroup
	for ki, exp := range exps {
		for j := 0; j < perKey; j++ {
			wg.Add(1)
			go func(slot int, exp string) {
				defer wg.Done()
				status, cache, body := get(t, ts.URL+"/v1/v100/"+exp+"?quick=1")
				if status != http.StatusOK {
					t.Errorf("GET %s: status %d: %s", exp, status, body)
				}
				replies[slot] = reply{exp: exp, cache: cache, body: body}
			}(ki*perKey+j, exp)
		}
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, exp := range exps {
		key := resultstore.Key{GPU: gpu.GenV100, Exp: exp, Quick: true}
		if n := calls[key]; n != 1 {
			t.Errorf("%s: %d simulations for one cold key, want exactly 1", exp, n)
		}
		var want []byte
		outcomes := map[string]int{}
		for _, r := range replies {
			if r.exp != exp {
				continue
			}
			if want == nil {
				want = r.body
			} else if !bytes.Equal(r.body, want) {
				t.Errorf("%s: divergent response bodies for one key", exp)
			}
			outcomes[r.cache]++
		}
		if outcomes["miss"]+outcomes["hit"]+outcomes["coalesced"] != perKey {
			t.Errorf("%s: outcome split %v does not cover %d requests", exp, outcomes, perKey)
		}
		if outcomes["miss"] != 1 {
			t.Errorf("%s: %d misses, want exactly 1 (the computing request)", exp, outcomes["miss"])
		}
	}
	sc := reg.Scope("resultstore")
	if got := sc.Counter("miss").Value(); got != int64(len(exps)) {
		t.Errorf("miss counter = %d, want %d", got, len(exps))
	}
	total := sc.Counter("miss").Value() + sc.Counter("hit").Value() + sc.Counter("coalesced").Value()
	if want := int64(len(exps) * perKey); total != want {
		t.Errorf("outcome counters sum to %d, want %d", total, want)
	}
}

// TestServeMatrixByteIdentity is the acceptance check: for every
// supported (gpu, exp) pair, the served JSON body is byte-identical to
// what core.RunResult — the path behind `nocchar -json` — renders, and
// a second fetch is a cache hit with the same bytes.
func TestServeMatrixByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick matrix in -short mode")
	}
	ts, _, _ := newConfiguredServer(t, serverConfig{}, newComputer(0))
	for _, cfg := range gpu.AllConfigs() {
		for _, e := range core.All() {
			if !e.SupportsGPU(cfg.Name) {
				continue
			}
			url := fmt.Sprintf("%s/v1/%s/%s?quick=1", ts.URL, strings.ToLower(string(cfg.Name)), e.ID)

			ctx, err := core.NewContext(cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			res, runErr := core.RunResult(ctx, e)
			status, cache, body := get(t, url)
			if runErr != nil {
				// A pair the experiment itself refuses at runtime (e.g.
				// fig19 on V100) prints an error in the CLI too; the
				// server must surface it, not fabricate a body.
				if status != http.StatusInternalServerError {
					t.Errorf("%s/%s: status %d for a run-refused pair, want 500", cfg.Name, e.ID, status)
				}
				continue
			}
			if status != http.StatusOK {
				t.Fatalf("GET %s: status %d: %s", url, status, body)
			}
			if cache != "miss" {
				t.Errorf("%s/%s: first fetch X-Cache = %q, want miss", cfg.Name, e.ID, cache)
			}
			want, err := res.JSONBytes()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(body, want) {
				t.Errorf("%s/%s: served JSON differs from nocchar -json bytes", cfg.Name, e.ID)
			}

			status2, cache2, body2 := get(t, url)
			if status2 != http.StatusOK || cache2 != "hit" {
				t.Errorf("%s/%s: second fetch (status %d, X-Cache %q), want 200 hit", cfg.Name, e.ID, status2, cache2)
			}
			if !bytes.Equal(body2, body) {
				t.Errorf("%s/%s: warm bytes differ from cold bytes", cfg.Name, e.ID)
			}
		}
	}
}

// TestServeFormats checks each format selector returns the matching
// pre-rendered bytes and media type.
func TestServeFormats(t *testing.T) {
	entry := &resultstore.Entry{
		JSON: []byte("J\n"), CSV: []byte("C\n"), Text: []byte("T\n"), Markdown: []byte("M\n"),
	}
	ts, _ := newTestServer(t, func(resultstore.Key) (*resultstore.Entry, error) {
		e := *entry
		return &e, nil
	})
	cases := []struct {
		query, want, ctype string
	}{
		{"", "J\n", "application/json"},
		{"?format=json", "J\n", "application/json"},
		{"?format=csv", "C\n", "text/csv; charset=utf-8"},
		{"?format=text", "T\n", "text/plain; charset=utf-8"},
		{"?format=md", "M\n", "text/markdown; charset=utf-8"},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + "/v1/v100/fig1" + c.query)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != c.want {
			t.Errorf("format %q: body %q, want %q", c.query, body, c.want)
		}
		if got := resp.Header.Get("Content-Type"); got != c.ctype {
			t.Errorf("format %q: Content-Type %q, want %q", c.query, got, c.ctype)
		}
	}
}

// TestServeRejectsBadTuples: invalid requests are refused before they
// can reach the simulation path.
func TestServeRejectsBadTuples(t *testing.T) {
	computed := false
	ts, _ := newTestServer(t, func(resultstore.Key) (*resultstore.Entry, error) {
		computed = true
		return &resultstore.Entry{JSON: []byte("{}\n")}, nil
	})
	cases := []struct {
		path string
		want int
	}{
		{"/v1/gtx480/fig1", http.StatusNotFound}, // unknown GPU
		{"/v1/v100/fig999", http.StatusNotFound}, // unknown experiment
		{"/v1/v100/fig1?format=xml", http.StatusBadRequest},
		{"/v2/v100/fig1", http.StatusNotFound}, // unknown API version
	}
	for _, c := range cases {
		status, _, body := get(t, ts.URL+c.path)
		if status != c.want {
			t.Errorf("GET %s: status %d (%s), want %d", c.path, status, bytes.TrimSpace(body), c.want)
		}
	}
	if computed {
		t.Error("a rejected request reached the compute path")
	}
}

// TestServeList: the index enumerates supported pairs only, in
// deterministic registry order.
func TestServeList(t *testing.T) {
	ts, _ := newTestServer(t, func(resultstore.Key) (*resultstore.Entry, error) {
		return &resultstore.Entry{JSON: []byte("{}\n")}, nil
	})
	status, _, body := get(t, ts.URL+"/v1/")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/: status %d", status)
	}
	s := string(body)
	if !strings.Contains(s, `"/v1/V100/fig1"`) && !strings.Contains(s, `"/v1/v100/fig1"`) {
		t.Errorf("index is missing the v100/fig1 row:\n%.300s", s)
	}
	// A second fetch must be byte-identical (no map-order leakage).
	_, _, body2 := get(t, ts.URL+"/v1/")
	if !bytes.Equal(body, body2) {
		t.Error("index bytes differ between fetches")
	}
}

// TestMetricz: the endpoint exposes the store's counters in the
// nocchar -metrics JSON shape.
func TestMetricz(t *testing.T) {
	ts, _ := newTestServer(t, func(key resultstore.Key) (*resultstore.Entry, error) {
		b := []byte("{}\n")
		return &resultstore.Entry{JSON: b, CSV: b, Text: b, Markdown: b}, nil
	})
	get(t, ts.URL+"/v1/v100/fig1") // miss
	get(t, ts.URL+"/v1/v100/fig1") // hit
	status, _, body := get(t, ts.URL+"/metricz")
	if status != http.StatusOK {
		t.Fatalf("GET /metricz: status %d", status)
	}
	for _, want := range []string{
		`"resultstore/miss": 1`,
		`"resultstore/hit": 1`,
		`"http/requests": 2`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metricz missing %q:\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, func(resultstore.Key) (*resultstore.Entry, error) {
		return &resultstore.Entry{}, nil
	})
	status, _, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("GET /healthz = (%d, %q), want (200, ok)", status, body)
	}
}

// TestHealthzDuringDrain is the balancer contract: the moment graceful
// drain begins, /healthz flips to 503 — before the listener closes — so
// load balancers stop routing new traffic into the drain window, while
// result requests already in flight (or stragglers racing the drain)
// are still answered. Regression test for the window where healthz
// stayed 200 until the listener closed.
func TestHealthzDuringDrain(t *testing.T) {
	reg := obs.New()
	store, err := resultstore.New(resultstore.Options{
		Compute: func(_ context.Context, key resultstore.Key) (*resultstore.Entry, error) {
			b := []byte("{}\n")
			return &resultstore.Entry{JSON: b, CSV: b, Text: b, Markdown: b}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sv := newServer(store, reg, serverConfig{})
	ts := httptest.NewServer(sv.handler())
	defer ts.Close()

	if status, _, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("pre-drain /healthz = %d, want 200", status)
	}
	sv.beginDrain()
	sv.beginDrain() // idempotent
	status, _, body := get(t, ts.URL+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz = %d, want 503", status)
	}
	if !strings.Contains(string(body), "draining") {
		t.Errorf("draining /healthz body = %q, want it to say draining", body)
	}
	if got := reg.Scope("http").Gauge("draining").Value(); got != 1 {
		t.Errorf("http/draining gauge = %d, want 1", got)
	}
	// Stragglers inside the drain window are still served: only the
	// health probe refuses, not the result path.
	if status, _, _ := get(t, ts.URL+"/v1/v100/fig1?quick=1"); status != http.StatusOK {
		t.Errorf("result request during drain = %d, want 200", status)
	}
}
