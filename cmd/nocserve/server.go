package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"gpunoc/internal/cluster"
	"gpunoc/internal/core"
	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
	"gpunoc/internal/resultstore"
)

// newComputer builds the store's cold-key path: one full experiment run
// through the same core.RunResult pipeline cmd/nocchar prints from, so
// every served byte is the CLI's byte. workers sizes each simulation's
// internal sweep pool. The context is the store's Base (server drain),
// never a request's: it reaches the experiment as core's Cancel, so a
// draining process stops simulating at the next sweep-row checkpoint
// while request deadlines never abort a shared fill.
func newComputer(workers int) func(context.Context, resultstore.Key) (*resultstore.Entry, error) {
	return func(cancel context.Context, key resultstore.Key) (*resultstore.Entry, error) {
		cfg, err := gpu.ByName(string(key.GPU))
		if err != nil {
			return nil, err
		}
		e, err := core.Lookup(key.Exp)
		if err != nil {
			return nil, err
		}
		ctx, err := core.NewContext(cfg, key.Quick)
		if err != nil {
			return nil, err
		}
		ctx.Workers = workers
		ctx.Cancel = cancel
		res, err := core.RunResult(ctx, e)
		if err != nil {
			return nil, err
		}
		return entryFromResult(res)
	}
}

// entryFromResult pre-renders every serving format once, at compute
// time, so a warm key answers any format without re-rendering.
func entryFromResult(res *core.Result) (*resultstore.Entry, error) {
	jsonBytes, err := res.JSONBytes()
	if err != nil {
		return nil, err
	}
	return &resultstore.Entry{
		JSON:     jsonBytes,
		CSV:      res.CSVBytes(),
		Text:     res.TextBytes(),
		Markdown: res.MarkdownBytes(),
	}, nil
}

// serverConfig carries the production-ingress knobs from main's flags.
// The zero value reproduces the pre-deadline behavior exactly: no
// request deadline, no admission bound.
type serverConfig struct {
	// requestTimeout bounds each result request's wall time, queue wait
	// included; 0 means no deadline. Expiry returns 504 and detaches the
	// waiter — the shared fill keeps running and still caches.
	requestTimeout time.Duration
	// maxInflight bounds concurrently admitted result requests; <= 0
	// means unlimited.
	maxInflight int
	// queueDepth bounds how many requests may wait for a slot when all
	// maxInflight are busy; overflow is shed with 429 + Retry-After.
	queueDepth int
}

// server is the HTTP serving layer over one result store.
type server struct {
	store *resultstore.Store
	// reg is the root registry /metricz renders; the store scopes itself
	// under "resultstore/", the handler under "http/".
	reg *obs.Registry
	cfg serverConfig
	adm *admission
	// cluster, when non-nil, shards the key space across peers: non-owner
	// requests forward one hop to the owner, falling back to local
	// computation when the owner is unhealthy. Nil means single-node.
	cluster *cluster.Cluster
	// draining flips when graceful shutdown begins; /healthz answers 503
	// from then on so balancers stop routing into the drain window while
	// in-flight and straggler requests still complete.
	draining atomic.Bool

	requests      *obs.Counter
	errors        *obs.Counter
	shed          *obs.Counter
	timedOut      *obs.Counter
	canceled      *obs.Counter
	drainingGauge *obs.Gauge
	latencyMS     *obs.Histogram
	queueWaitMS   *obs.Histogram
}

// newServer wires a server over a store and registry (both required by
// main; tests may pass a stub store and a fresh registry).
func newServer(store *resultstore.Store, reg *obs.Registry, cfg serverConfig) *server {
	h := reg.Scope("http")
	return &server{
		store:         store,
		reg:           reg,
		cfg:           cfg,
		adm:           newAdmission(cfg.maxInflight, cfg.queueDepth),
		requests:      h.Counter("requests"),
		errors:        h.Counter("errors"),
		shed:          h.Counter("shed"),
		timedOut:      h.Counter("timed_out"),
		canceled:      h.Counter("canceled"),
		drainingGauge: h.Gauge("draining"),
		latencyMS:     h.Histogram("latency_ms", []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}),
		queueWaitMS:   h.Histogram("queue_wait_ms", []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}),
	}
}

// beginDrain marks the server as draining: from this call on /healthz
// answers 503 so balancers take the node out of rotation, while result
// endpoints keep serving whatever still arrives until the listener
// closes. Idempotent.
func (s *server) beginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.drainingGauge.Set(1)
	}
}

// handler returns the route table. Result URLs are
// GET /v1/{gpu}/{exp}?format=json|csv|text|md&quick=1.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/{$}", s.handleList)
	mux.HandleFunc("GET /v1/{gpu}/{exp}", s.timed(s.handleResult))
	mux.HandleFunc("GET /metricz", s.handleMetricz)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// timed wraps a result handler with the request counter and the
// wall-latency histogram (cache hits land in the bottom bucket, cold
// full-fidelity simulations in the top ones).
func (s *server) timed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		start := time.Now()
		h(w, r)
		s.latencyMS.Observe(time.Since(start).Milliseconds())
	}
}

// contentTypes maps the format query value to the served media type.
var contentTypes = map[string]string{
	"json": "application/json",
	"csv":  "text/csv; charset=utf-8",
	"text": "text/plain; charset=utf-8",
	"md":   "text/markdown; charset=utf-8",
}

// handleResult serves one (gpu, exp, quick) tuple in the requested
// format. The tuple is validated before it can reach the store, so a
// bad URL costs a map lookup, never a simulation slot.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	cfg, err := gpu.ByName(r.PathValue("gpu"))
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	e, err := core.Lookup(r.PathValue("exp"))
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	if !e.SupportsGPU(cfg.Name) {
		s.fail(w, http.StatusNotFound,
			fmt.Errorf("experiment %s does not apply to %s (supported: %v)", e.ID, cfg.Name, e.GPUs))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	ctype, ok := contentTypes[format]
	if !ok {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (want json, csv, text, or md)", format))
		return
	}
	quick := r.URL.Query().Get("quick") == "1"
	key := resultstore.Key{GPU: cfg.Name, Exp: e.ID, Quick: quick}

	// Request-scoped cancellation: the client's connection context,
	// tightened by the configured per-request deadline. It governs this
	// waiter only — a fired context detaches the request while the
	// shared fill keeps running under the store's Base and still caches.
	ctx := r.Context()
	if s.cfg.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.requestTimeout)
		defer cancel()
	}
	// Sharded tier: a non-owner key forwards one hop to its owner before
	// consuming a local admission slot — the simulation work (and its
	// admission accounting) belongs to the owner. Unreachable owners fall
	// through to the local path below: degraded, never down.
	if s.cluster != nil && s.forwardToOwner(ctx, w, r, key) {
		return
	}
	queuedAt := time.Now()
	if err := s.adm.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, errShed):
			s.shed.Inc()
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, err)
		case errors.Is(err, context.DeadlineExceeded):
			s.timedOut.Inc()
			s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("request deadline exceeded while queued (limit %s)", s.cfg.requestTimeout))
		default:
			// Client disconnected while queued; nobody reads a response.
			s.canceled.Inc()
		}
		return
	}
	defer s.adm.release()
	s.queueWaitMS.Observe(time.Since(queuedAt).Milliseconds())

	entry, outcome, err := s.store.GetContext(ctx, key)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.timedOut.Inc()
			s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("request deadline exceeded (limit %s); the result keeps computing and a retry will hit the cache", s.cfg.requestTimeout))
		case errors.Is(err, context.Canceled):
			s.canceled.Inc()
		default:
			s.fail(w, http.StatusInternalServerError, err)
		}
		return
	}
	var body []byte
	switch format {
	case "json":
		body = entry.JSON
	case "csv":
		body = entry.CSV
	case "text":
		body = entry.Text
	case "md":
		body = entry.Markdown
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("X-Cache", outcome.String())
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	_, _ = w.Write(body)
}

// listedExperiment is one row of the /v1 index.
type listedExperiment struct {
	GPU   string `json:"gpu"`
	Exp   string `json:"exp"`
	Title string `json:"title"`
	URL   string `json:"url"`
}

// handleList enumerates every servable (gpu, exp) pair in registry
// order — the same supported-pair filter the CLI's -all mode applies.
func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	var rows []listedExperiment
	for _, cfg := range gpu.AllConfigs() {
		for _, e := range core.All() {
			if !e.SupportsGPU(cfg.Name) {
				continue
			}
			name := string(cfg.Name)
			rows = append(rows, listedExperiment{
				GPU:   name,
				Exp:   e.ID,
				Title: e.Title,
				URL:   fmt.Sprintf("/v1/%s/%s", name, e.ID),
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, rows)
}

// handleMetricz renders every instrument — the store's cache counters,
// the HTTP layer's, and each simulation's own scope — as the same
// sorted-key JSON document `nocchar -metrics` writes.
func (s *server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.WriteMetrics(w); err != nil {
		s.errors.Inc()
	}
}

// forwardToOwner routes one validated result request through the shard
// router. It returns true when it wrote the response (a completed
// forward) and false when the request must be served locally: this node
// owns the key, the request already hopped once, or the owner is
// unhealthy/unreachable (fallback_local — the result is deterministic,
// so local bytes are identical and only the one-simulation-per-cluster
// economy is lost until the peer recovers).
func (s *server) forwardToOwner(ctx context.Context, w http.ResponseWriter, r *http.Request, key resultstore.Key) bool {
	c := s.cluster
	// The shard key is the result's content address: the same SHA-256
	// derivation the spill files are named by, so routing, caching, and
	// spill all agree on identity.
	owner := c.Router.Owner(key.ContentAddress())
	if c.Router.IsSelf(owner) {
		return false
	}
	if r.Header.Get(cluster.ForwardedHeader) != "" {
		// Single-hop rule: an already-forwarded request is served where
		// it lands even when this node disagrees about ownership, so
		// divergent peer sets mis-route at most once and can never loop.
		c.MisRouted.Inc()
		return false
	}
	if !c.Pool.Healthy(owner) {
		c.FallbackLocal.Inc()
		return false
	}
	resp, err := c.Forward(ctx, owner, r.URL.RequestURI())
	if err != nil {
		c.Pool.MarkDown(owner)
		c.FallbackLocal.Inc()
		return false
	}
	c.Pool.MarkUp(owner)
	c.Forwarded.Inc()
	for _, h := range []string{"Content-Type", "X-Cache"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Noc-Owner", owner)
	w.Header().Set("Content-Length", fmt.Sprint(len(resp.Body)))
	w.WriteHeader(resp.Status)
	_, _ = w.Write(resp.Body)
	return true
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = fmt.Fprintln(w, "draining")
		return
	}
	_, _ = fmt.Fprintln(w, "ok")
}

// writeJSON indents v onto the response; encode failures surface as a
// 500 because nothing has been written yet.
func writeJSON(w http.ResponseWriter, v interface{}) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf("nocserve: %v", err), http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(append(data, '\n'))
}

// fail writes a plain-text error body and counts it.
func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.errors.Inc()
	http.Error(w, fmt.Sprintf("nocserve: %v", err), status)
}
