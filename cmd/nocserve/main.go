// Command nocserve serves the characterization suite's experiment
// artifacts over HTTP, backed by a content-addressed result cache so
// each deterministic (gpu, experiment, quick) tuple is simulated at
// most once no matter how many clients ask.
//
// Usage:
//
//	nocserve -addr 127.0.0.1:8080
//	nocserve -addr :8080 -cache-bytes 268435456 -spill /var/cache/nocserve
//	nocserve -prewarm quick -parallel 8
//
// Endpoints:
//
//	GET /v1                         list every servable (gpu, exp) pair
//	GET /v1/{gpu}/{exp}             the experiment's artifacts
//	    ?format=json|csv|text|md    response rendering (default json)
//	    ?quick=1                    quick-mode run (nocchar -quick)
//	GET /metricz                    instruments as sorted-key JSON
//	GET /healthz                    liveness probe
//
// Response bodies are byte-identical to the corresponding nocchar
// stdout: format=json matches `nocchar -gpu G -exp E -json` (minus the
// CLI's three-line header), csv matches -csv, text the default mode.
// The X-Cache response header reports how the request was satisfied:
// miss (this request simulated), hit (memory), coalesced (shared an
// in-flight simulation), or spill (loaded from the -spill directory).
//
// Deadlines and admission control (all off by default):
//
//	-request-timeout D   per-request wall-time budget; expiry returns
//	                     504 while the in-flight simulation keeps
//	                     running and still populates the cache, so a
//	                     retry of the same tuple is a hit
//	-max-inflight N      concurrently admitted result requests
//	-queue-depth N       requests allowed to wait for a slot; overflow
//	                     is shed with 429 + Retry-After: 1
//	-negative-ttl D      window during which retries of a key whose
//	                     simulation just failed are refused with the
//	                     original error instead of re-simulating
//	-read-timeout D      net/http ReadTimeout (full request read)
//	-idle-timeout D      net/http IdleTimeout (keep-alive connections)
//
// -prewarm quick|full simulates the whole supported (gpu, experiment)
// matrix in the background at startup on the internal/parallel pool, so
// first requests hit a warm cache; it stops at the next pair boundary
// on SIGINT/SIGTERM and logs how many pairs were warmed, failed, and
// skipped. -drain bounds how long shutdown waits for in-flight requests
// and fills after SIGINT/SIGTERM; /healthz answers 503 from the moment
// drain begins so balancers stop routing before the listener closes.
//
// Sharded cluster mode (off by default):
//
//	-peers URL,URL,...   the full member list, this node included
//	-self URL            this node's base URL as it appears in -peers
//
// Each result key is owned by exactly one member (rendezvous hashing
// over the key's content address); a request landing on a non-owner
// forwards one hop to the owner (X-Noc-Forwarded guards against loops)
// so each cold key is simulated once cluster-wide. An unreachable or
// draining owner degrades the node to computing locally — identical
// bytes, counted as cluster/fallback_local — so the cluster behaves as
// N independent nodes rather than failing. Forward/mis-route/unhealthy
// counters and a forward-latency histogram appear under cluster/ on
// /metricz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gpunoc/internal/cluster"
	"gpunoc/internal/core"
	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
	"gpunoc/internal/parallel"
	"gpunoc/internal/resultstore"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		cacheBytes  = flag.Int64("cache-bytes", 256<<20, "in-memory result-cache budget in bytes; <= 0 means unbounded")
		spillDir    = flag.String("spill", "", "directory for the disk spill; empty disables it")
		spillMax    = flag.Int64("spill-max-bytes", 0, "disk-spill byte budget; oldest spill files are pruned past it (evicted_spill on /metricz); <= 0 means unbounded")
		prewarm     = flag.String("prewarm", "", "pre-simulate the supported (gpu, exp) matrix in the background: quick, full, or empty to disable")
		workers     = flag.Int("parallel", 0, "worker-pool size for each simulation's sweeps and the prewarm fan-out; 0 means GOMAXPROCS")
		drain       = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests and fills")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request wall-time budget (504 on expiry; the fill keeps running); 0 disables")
		maxInflight = flag.Int("max-inflight", 0, "concurrently admitted result requests; 0 means unlimited")
		queueDepth  = flag.Int("queue-depth", 0, "requests allowed to wait for an admission slot; overflow gets 429")
		negativeTTL = flag.Duration("negative-ttl", 0, "window during which retries of a just-failed key are refused without re-simulating; 0 disables")
		readTimeout = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout (full request read); 0 disables")
		idleTimeout = flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections; 0 disables")
		peers       = flag.String("peers", "", "comma-separated base URLs of every cluster member, this node included; empty runs single-node")
		self        = flag.String("self", "", "this node's base URL exactly as listed in -peers; required with -peers")
	)
	flag.Parse()
	if *prewarm != "" && *prewarm != "quick" && *prewarm != "full" {
		fatal(fmt.Errorf("-prewarm must be quick, full, or empty (got %q)", *prewarm))
	}
	if (*peers == "") != (*self == "") {
		fatal(errors.New("-peers and -self must be set together"))
	}

	// The signal context is the store's Base: cancelling it (SIGINT,
	// SIGTERM) aborts in-flight simulations at their next sweep-row
	// checkpoint and stops the prewarm at its next pair boundary.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.New()
	t0 := time.Now()
	store, err := resultstore.New(resultstore.Options{
		Compute:       newComputer(*workers),
		Base:          ctx,
		MaxBytes:      *cacheBytes,
		SpillDir:      *spillDir,
		SpillMaxBytes: *spillMax,
		NegativeTTL:   *negativeTTL,
		Obs:           reg.Scope("resultstore"),
		Clock:         func() time.Duration { return time.Since(t0) },
	})
	if err != nil {
		fatal(err)
	}
	cfg := serverConfig{requestTimeout: *reqTimeout, maxInflight: *maxInflight, queueDepth: *queueDepth}
	sv := newServer(store, reg, cfg)
	if *peers != "" {
		cl, err := cluster.New(cluster.Options{
			Self:       *self,
			Peers:      strings.Split(*peers, ","),
			Retries:    2,
			Backoff:    100 * time.Millisecond,
			RetryAfter: 5 * time.Second,
			Clock:      func() time.Duration { return time.Since(t0) },
			Sleep:      time.Sleep,
			Obs:        reg.Scope("cluster"),
		})
		if err != nil {
			fatal(err)
		}
		sv.cluster = cl
		fmt.Fprintf(os.Stderr, "nocserve: cluster member %s of %v\n", *self, cl.Router.Peers())
	}
	srv := &http.Server{
		Handler: sv.handler(),
		// ReadHeaderTimeout alone closes the classic slowloris hole: a
		// client trickling header bytes can no longer pin a connection
		// (and its goroutine) forever. ReadTimeout then bounds the whole
		// request read, IdleTimeout reaps parked keep-alives, and the
		// header cap bounds per-connection memory. There is deliberately
		// no WriteTimeout: a cold full-fidelity simulation legitimately
		// takes longer than any fixed write budget, and -request-timeout
		// already bounds the handler.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    1 << 20,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The resolved address (with the real port when -addr asked for :0)
	// goes to stderr so scripts can scrape it; stdout stays silent.
	fmt.Fprintf(os.Stderr, "nocserve: listening on %s\n", ln.Addr())

	if *prewarm != "" {
		go prewarmMatrix(ctx, store, *prewarm == "quick", *workers)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		// Serve only returns on listener failure here; Shutdown's
		// ErrServerClosed cannot arrive before a signal.
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	// Flip /healthz to 503 before the listener starts refusing: balancers
	// polling health take the node out of rotation during the drain
	// window instead of discovering the closure by connection error.
	sv.beginDrain()
	fmt.Fprintf(os.Stderr, "nocserve: shutting down, draining for up to %s\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	// Detached fills (from timed-out or disconnected requests) may still
	// be publishing into the cache and spill; give them the remainder of
	// the drain budget. The Base context is already cancelled, so each
	// stops at its next sweep-row checkpoint rather than running long.
	fillsDone := make(chan struct{})
	go func() { store.Wait(); close(fillsDone) }()
	select {
	case <-fillsDone:
	case <-shutdownCtx.Done():
		fmt.Fprintln(os.Stderr, "nocserve: drain deadline reached with fills still unwinding")
	}
	fmt.Fprintln(os.Stderr, "nocserve: drained")
}

// prewarmMatrix simulates every supported (gpu, exp) pair once on the
// deterministic parallel pool, populating the cache (and spill) before
// traffic arrives. Requests racing a prewarm of the same key coalesce
// onto it rather than simulating twice. One pair's failure no longer
// aborts the sweep or vanishes silently: every pair is attempted, each
// failure is logged, and the summary line counts warmed vs failed vs
// skipped. Cancelling ctx (shutdown) skips the pairs not yet dispatched.
func prewarmMatrix(ctx context.Context, store *resultstore.Store, quick bool, workers int) {
	type pair struct {
		gpu gpu.Generation
		exp string
	}
	var pairs []pair
	for _, cfg := range gpu.AllConfigs() {
		for _, e := range core.All() {
			if e.SupportsGPU(cfg.Name) {
				pairs = append(pairs, pair{gpu: cfg.Name, exp: e.ID})
			}
		}
	}
	errNotDispatched := errors.New("not dispatched")
	status := make([]error, len(pairs))
	for i := range status {
		status[i] = errNotDispatched
	}
	// The per-pair fn never returns an error: a failed pair must not
	// stop the runner from dispatching the remaining pairs. Outcomes
	// land in index-addressed slots and are tallied after.
	_ = parallel.ForEachContext(ctx, workers, len(pairs), func(i int) error {
		key := resultstore.Key{GPU: pairs[i].gpu, Exp: pairs[i].exp, Quick: quick}
		_, _, err := store.GetContext(ctx, key)
		status[i] = err
		return nil
	})
	var warmed, failed, skipped int
	for i, err := range status {
		switch {
		case err == nil:
			warmed++
		case errors.Is(err, errNotDispatched), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			skipped++
		default:
			failed++
			key := resultstore.Key{GPU: pairs[i].gpu, Exp: pairs[i].exp, Quick: quick}
			fmt.Fprintf(os.Stderr, "nocserve: prewarm %s: %v\n", key, err)
		}
	}
	fmt.Fprintf(os.Stderr, "nocserve: prewarm done: %d warmed, %d failed, %d skipped of %d pairs (quick=%v)\n",
		warmed, failed, skipped, len(pairs), quick)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocserve:", err)
	os.Exit(1)
}
