// Command nocserve serves the characterization suite's experiment
// artifacts over HTTP, backed by a content-addressed result cache so
// each deterministic (gpu, experiment, quick) tuple is simulated at
// most once no matter how many clients ask.
//
// Usage:
//
//	nocserve -addr 127.0.0.1:8080
//	nocserve -addr :8080 -cache-bytes 268435456 -spill /var/cache/nocserve
//	nocserve -prewarm quick -parallel 8
//
// Endpoints:
//
//	GET /v1                         list every servable (gpu, exp) pair
//	GET /v1/{gpu}/{exp}             the experiment's artifacts
//	    ?format=json|csv|text|md    response rendering (default json)
//	    ?quick=1                    quick-mode run (nocchar -quick)
//	GET /metricz                    instruments as sorted-key JSON
//	GET /healthz                    liveness probe
//
// Response bodies are byte-identical to the corresponding nocchar
// stdout: format=json matches `nocchar -gpu G -exp E -json` (minus the
// CLI's three-line header), csv matches -csv, text the default mode.
// The X-Cache response header reports how the request was satisfied:
// miss (this request simulated), hit (memory), coalesced (shared an
// in-flight simulation), or spill (loaded from the -spill directory).
//
// -prewarm quick|full simulates the whole supported (gpu, experiment)
// matrix in the background at startup on the internal/parallel pool, so
// first requests hit a warm cache. -drain bounds how long shutdown
// waits for in-flight simulations after SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gpunoc/internal/core"
	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
	"gpunoc/internal/parallel"
	"gpunoc/internal/resultstore"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		cacheBytes = flag.Int64("cache-bytes", 256<<20, "in-memory result-cache budget in bytes; <= 0 means unbounded")
		spillDir   = flag.String("spill", "", "directory for the disk spill; empty disables it")
		prewarm    = flag.String("prewarm", "", "pre-simulate the supported (gpu, exp) matrix in the background: quick, full, or empty to disable")
		workers    = flag.Int("parallel", 0, "worker-pool size for each simulation's sweeps and the prewarm fan-out; 0 means GOMAXPROCS")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests")
	)
	flag.Parse()
	if *prewarm != "" && *prewarm != "quick" && *prewarm != "full" {
		fatal(fmt.Errorf("-prewarm must be quick, full, or empty (got %q)", *prewarm))
	}

	reg := obs.New()
	t0 := time.Now()
	store, err := resultstore.New(resultstore.Options{
		Compute:  newComputer(*workers),
		MaxBytes: *cacheBytes,
		SpillDir: *spillDir,
		Obs:      reg.Scope("resultstore"),
		Clock:    func() time.Duration { return time.Since(t0) },
	})
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{Handler: newServer(store, reg).handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The resolved address (with the real port when -addr asked for :0)
	// goes to stderr so scripts can scrape it; stdout stays silent.
	fmt.Fprintf(os.Stderr, "nocserve: listening on %s\n", ln.Addr())

	if *prewarm != "" {
		go prewarmMatrix(store, *prewarm == "quick", *workers)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		// Serve only returns on listener failure here; Shutdown's
		// ErrServerClosed cannot arrive before a signal.
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "nocserve: shutting down, draining for up to %s\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	fmt.Fprintln(os.Stderr, "nocserve: drained")
}

// prewarmMatrix simulates every supported (gpu, exp) pair once on the
// deterministic parallel pool, populating the cache (and spill) before
// traffic arrives. Requests racing a prewarm of the same key coalesce
// onto it rather than simulating twice.
func prewarmMatrix(store *resultstore.Store, quick bool, workers int) {
	type pair struct {
		gpu gpu.Generation
		exp string
	}
	var pairs []pair
	for _, cfg := range gpu.AllConfigs() {
		for _, e := range core.All() {
			if e.SupportsGPU(cfg.Name) {
				pairs = append(pairs, pair{gpu: cfg.Name, exp: e.ID})
			}
		}
	}
	err := parallel.ForEach(workers, len(pairs), func(i int) error {
		key := resultstore.Key{GPU: pairs[i].gpu, Exp: pairs[i].exp, Quick: quick}
		if _, _, err := store.Get(key); err != nil {
			return fmt.Errorf("prewarm %s: %w", key, err)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocserve:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "nocserve: prewarmed %d results (quick=%v)\n", len(pairs), quick)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nocserve:", err)
	os.Exit(1)
}
