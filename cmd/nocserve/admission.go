package main

import (
	"context"
	"errors"
	"sync/atomic"
)

// errShed reports an admission refusal: every computation slot is busy
// and the wait queue is full. The handler maps it to 429 + Retry-After.
var errShed = errors.New("server at capacity")

// admission bounds how many result requests may occupy computation
// slots at once, with a bounded wait queue in front. The zero knobs
// (maxInflight <= 0) disable it entirely: acquire never blocks and
// never sheds, preserving the unbounded behavior of earlier builds.
//
// The shape is a semaphore channel plus an atomic queue counter rather
// than a real queue: waiters park on the channel send, so slot handoff
// order is the runtime's (fairness does not matter — every queued
// request is equivalent), and the counter only enforces the bound.
type admission struct {
	// slots holds one token per in-flight request; nil means unlimited.
	slots chan struct{}
	// depth bounds how many callers may wait for a slot at once.
	depth int64
	// queued counts callers currently waiting for a slot.
	queued atomic.Int64
}

// newAdmission builds the controller; maxInflight <= 0 disables it and
// queueDepth < 0 is treated as 0 (no waiting: busy means shed).
func newAdmission(maxInflight, queueDepth int) *admission {
	a := &admission{}
	if maxInflight > 0 {
		a.slots = make(chan struct{}, maxInflight)
		if queueDepth > 0 {
			a.depth = int64(queueDepth)
		}
	}
	return a
}

// acquire claims a computation slot, waiting in the bounded queue when
// all slots are busy. It returns errShed when the queue is full, or
// ctx.Err() when the caller's deadline fires or the client disconnects
// while queued. A nil error means the caller holds a slot and must
// release it.
func (a *admission) acquire(ctx context.Context) error {
	if a.slots == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.depth {
		a.queued.Add(-1)
		return errShed
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the caller's slot, waking one queued waiter.
func (a *admission) release() {
	if a.slots != nil {
		<-a.slots
	}
}
