package main

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gpunoc/internal/cluster"
	"gpunoc/internal/core"
	"gpunoc/internal/gpu"
	"gpunoc/internal/obs"
	"gpunoc/internal/resultstore"
)

// keyCounter counts compute invocations per key on one node.
type keyCounter struct {
	mu    sync.Mutex
	calls map[resultstore.Key]int
}

func (c *keyCounter) inc(key resultstore.Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.calls == nil {
		c.calls = map[resultstore.Key]int{}
	}
	c.calls[key]++
}

func (c *keyCounter) count(key resultstore.Key) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[key]
}

// clusterNode is one member of a test cluster.
type clusterNode struct {
	url   string
	ts    *httptest.Server
	sv    *server
	reg   *obs.Registry
	calls *keyCounter
}

// newTestClusterNodes starts n sharded nocserve nodes that know each
// other: listeners are bound first so every node's peer list names the
// final URLs, then each node gets its own store (wrapping compute with
// a per-node call counter), registry, and cluster router. The health
// clock is injected per-node and the retry window is effectively
// infinite, so a peer marked down stays down for the test's duration.
func newTestClusterNodes(t *testing.T, n int, compute func(context.Context, resultstore.Key) (*resultstore.Entry, error)) []*clusterNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		node := &clusterNode{url: urls[i], calls: &keyCounter{}}
		counted := func(ctx context.Context, key resultstore.Key) (*resultstore.Entry, error) {
			node.calls.inc(key)
			return compute(ctx, key)
		}
		reg := obs.New()
		t0 := time.Now()
		store, err := resultstore.New(resultstore.Options{
			Compute: counted,
			Obs:     reg.Scope("resultstore"),
			Clock:   func() time.Duration { return time.Since(t0) },
		})
		if err != nil {
			t.Fatal(err)
		}
		sv := newServer(store, reg, serverConfig{})
		cl, err := cluster.New(cluster.Options{
			Self:       urls[i],
			Peers:      urls,
			Retries:    1,
			Backoff:    time.Millisecond,
			RetryAfter: time.Hour,
			Clock:      func() time.Duration { return time.Since(t0) },
			Obs:        reg.Scope("cluster"),
		})
		if err != nil {
			t.Fatal(err)
		}
		sv.cluster = cl
		ts := httptest.NewUnstartedServer(sv.handler())
		if err := ts.Listener.Close(); err != nil {
			t.Fatal(err)
		}
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(ts.Close)
		node.ts, node.sv, node.reg = ts, sv, reg
		nodes[i] = node
	}
	return nodes
}

// ownerIndex resolves which node the cluster's routing assigns a key.
func ownerIndex(t *testing.T, nodes []*clusterNode, key resultstore.Key) int {
	t.Helper()
	owner := nodes[0].sv.cluster.Router.Owner(key.ContentAddress())
	for i, n := range nodes {
		if n.url == owner {
			return i
		}
	}
	t.Fatalf("owner %s is not a cluster member", owner)
	return -1
}

// stubCompute returns deterministic per-key bytes, so any node
// computing a key — owner or fallback — produces identical output.
func stubCompute(_ context.Context, key resultstore.Key) (*resultstore.Entry, error) {
	body := []byte(fmt.Sprintf("{\"key\":%q}\n", key))
	return &resultstore.Entry{JSON: body, CSV: body, Text: body, Markdown: body}, nil
}

// TestClusterConformance is the acceptance drill for the sharded tier:
// the full supported experiment matrix fetched through randomly chosen
// entry nodes of a 3-shard cluster must be byte-identical to a fresh
// single-node core.RunResult, with exactly one simulation per cold key
// across the whole cluster, zero mis-routes, and zero fallbacks.
func TestClusterConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick matrix in -short mode")
	}
	nodes := newTestClusterNodes(t, 3, newComputer(0))
	rng := rand.New(rand.NewSource(42))

	type tuple struct {
		cfg gpu.Config
		exp *core.Experiment
	}
	var tuples []tuple
	for _, cfg := range gpu.AllConfigs() {
		for _, e := range core.All() {
			if e.SupportsGPU(cfg.Name) {
				tuples = append(tuples, tuple{cfg, e})
			}
		}
	}
	expectForwarded := 0
	for _, tu := range tuples {
		key := resultstore.Key{GPU: tu.cfg.Name, Exp: tu.exp.ID, Quick: true}
		entry := rng.Intn(len(nodes))
		if entry != ownerIndex(t, nodes, key) {
			expectForwarded++
		}
		url := fmt.Sprintf("%s/v1/%s/%s?quick=1", nodes[entry].url, strings.ToLower(string(tu.cfg.Name)), tu.exp.ID)

		ctx, err := core.NewContext(tu.cfg, true)
		if err != nil {
			t.Fatal(err)
		}
		res, runErr := core.RunResult(ctx, tu.exp)
		status, cache, body := get(t, url)
		if runErr != nil {
			// Run-refused pairs surface the owner's 500 through the
			// forward unchanged.
			if status != http.StatusInternalServerError {
				t.Errorf("%s/%s: status %d for a run-refused pair, want 500", tu.cfg.Name, tu.exp.ID, status)
			}
			continue
		}
		if status != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", url, status, body)
		}
		if cache != "miss" {
			t.Errorf("%s/%s: first cluster fetch X-Cache = %q, want miss", tu.cfg.Name, tu.exp.ID, cache)
		}
		want, err := res.JSONBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Errorf("%s/%s: cluster-served JSON differs from single-node RunResult bytes", tu.cfg.Name, tu.exp.ID)
		}
	}

	// Exactly one simulation per cold key cluster-wide, and only on the
	// owner.
	for _, tu := range tuples {
		key := resultstore.Key{GPU: tu.cfg.Name, Exp: tu.exp.ID, Quick: true}
		owner := ownerIndex(t, nodes, key)
		total := 0
		for i, n := range nodes {
			c := n.calls.count(key)
			total += c
			if i != owner && c != 0 {
				t.Errorf("%s: non-owner node %d simulated it %d times", key, i, c)
			}
		}
		if total != 1 {
			t.Errorf("%s: %d simulations cluster-wide, want exactly 1", key, total)
		}
	}
	var forwarded, misRouted, fallback int64
	for _, n := range nodes {
		sc := n.reg.Scope("cluster")
		forwarded += sc.Counter("forwarded").Value()
		misRouted += sc.Counter("mis_routed").Value()
		fallback += sc.Counter("fallback_local").Value()
	}
	if forwarded != int64(expectForwarded) {
		t.Errorf("cluster forwarded %d requests, want %d (one per non-owner entry)", forwarded, expectForwarded)
	}
	if misRouted != 0 || fallback != 0 {
		t.Errorf("healthy cluster counted mis_routed=%d fallback_local=%d, want 0/0", misRouted, fallback)
	}
}

// TestClusterDegradesWhenPeerDies kills one shard mid-sweep: requests
// for its keys must keep answering 200 with identical bytes from the
// surviving nodes' local fallback, with no request errors anywhere.
func TestClusterDegradesWhenPeerDies(t *testing.T) {
	nodes := newTestClusterNodes(t, 3, stubCompute)

	var keys []resultstore.Key
	for _, e := range core.All() {
		if e.SupportsGPU(gpu.GenV100) {
			keys = append(keys, resultstore.Key{GPU: gpu.GenV100, Exp: e.ID, Quick: true})
		}
	}
	const victim = 2
	for i, key := range keys {
		if i == len(keys)/2 {
			// Mid-sweep failure: the victim's listener closes; every
			// forward to it from here on is refused at dial time.
			nodes[victim].ts.Close()
		}
		// Entry nodes are always survivors; the victim participates as an
		// owner only, which is what makes its death visible.
		entry := nodes[i%2]
		url := fmt.Sprintf("%s/v1/v100/%s?quick=1", entry.url, key.Exp)
		status, _, body := get(t, url)
		if status != http.StatusOK {
			t.Fatalf("GET %s after peer death: status %d: %s", url, status, body)
		}
		want, _ := stubCompute(context.Background(), key)
		if !bytes.Equal(body, want.JSON) {
			t.Errorf("%s: degraded-mode bytes differ from the deterministic result", key)
		}
	}
	// Second pass over every key the dead node owns, through both
	// survivors: forwarded responses are never cached on the entry node,
	// so each of these must be served by local fallback (or a fallback
	// already cached above) — deterministically exercising the degraded
	// path no matter how the sweep halves split the ownership.
	victimKeys := 0
	for _, key := range keys {
		if ownerIndex(t, nodes, key) != victim {
			continue
		}
		victimKeys++
		for i := 0; i < 2; i++ {
			url := fmt.Sprintf("%s/v1/v100/%s?quick=1", nodes[i].url, key.Exp)
			status, _, body := get(t, url)
			if status != http.StatusOK {
				t.Fatalf("GET %s (dead owner) = %d: %s", url, status, body)
			}
			want, _ := stubCompute(context.Background(), key)
			if !bytes.Equal(body, want.JSON) {
				t.Errorf("%s: dead-owner fallback bytes differ", key)
			}
		}
	}
	if victimKeys == 0 {
		t.Log("rendezvous assigned the victim no v100 keys this run; fallback exercised only if the sweep hit one")
	}

	var fallback, unhealthy, errorsSeen int64
	for i, n := range nodes {
		if i == victim {
			continue
		}
		fallback += n.reg.Scope("cluster").Counter("fallback_local").Value()
		unhealthy += n.reg.Scope("cluster").Counter("peer_unhealthy").Value()
		errorsSeen += n.reg.Scope("http").Counter("errors").Value()
	}
	if victimKeys > 0 && fallback == 0 {
		t.Error("no fallback_local ticks: the victim's keys were never served degraded")
	}
	if victimKeys > 0 && unhealthy == 0 {
		t.Error("no peer_unhealthy ticks: the dead peer was never marked down")
	}
	if errorsSeen != 0 {
		t.Errorf("survivors counted %d request errors, want 0 (degrade, don't fail)", errorsSeen)
	}
	// The dead peer must have been marked down — after the first failed
	// forward, later requests skip the dial and fall back immediately.
	for i, n := range nodes {
		if i == victim {
			continue
		}
		if !n.sv.cluster.Pool.Down(nodes[victim].url) {
			t.Errorf("node %d still considers the dead peer healthy", i)
		}
	}
}

// TestClusterSingleHopGuard: an already-forwarded request landing on a
// non-owner is served locally — counted as mis-routed, never forwarded
// again — so divergent peer sets cannot create forwarding loops.
func TestClusterSingleHopGuard(t *testing.T) {
	nodes := newTestClusterNodes(t, 2, stubCompute)
	key := resultstore.Key{GPU: gpu.GenV100, Exp: "fig1", Quick: true}
	owner := ownerIndex(t, nodes, key)
	nonOwner := nodes[1-owner]

	req, err := http.NewRequest(http.MethodGet, nonOwner.url+"/v1/v100/fig1?quick=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.ForwardedHeader, "http://elsewhere.invalid")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request to non-owner: status %d, want 200", resp.StatusCode)
	}
	if got := nonOwner.reg.Scope("cluster").Counter("mis_routed").Value(); got != 1 {
		t.Errorf("mis_routed = %d, want 1", got)
	}
	if got := nonOwner.calls.count(key); got != 1 {
		t.Errorf("non-owner computed the key %d times, want 1 (served where it landed)", got)
	}
	if got := nodes[owner].calls.count(key); got != 0 {
		t.Errorf("owner computed the key %d times, want 0 (no second hop)", got)
	}

	// A normal (unforwarded) request to the non-owner forwards to the
	// owner, which computes it; the entry node computes nothing new.
	key2 := resultstore.Key{GPU: gpu.GenV100, Exp: "fig2", Quick: true}
	owner2 := ownerIndex(t, nodes, key2)
	entry := nodes[1-owner2]
	status, cache, _ := get(t, entry.url+"/v1/v100/fig2?quick=1")
	if status != http.StatusOK {
		t.Fatalf("forward via non-owner: status %d", status)
	}
	if cache != "miss" {
		t.Errorf("forwarded cold fetch X-Cache = %q, want the owner's miss", cache)
	}
	if got := nodes[owner2].calls.count(key2); got != 1 {
		t.Errorf("owner computed forwarded key %d times, want 1", got)
	}
	if got := entry.calls.count(key2); got != 0 {
		t.Errorf("entry node computed forwarded key %d times, want 0", got)
	}
	if got := entry.reg.Scope("cluster").Counter("forwarded").Value(); got != 1 {
		t.Errorf("entry node forwarded = %d, want 1", got)
	}
}
