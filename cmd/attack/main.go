// Command attack demonstrates the paper's Section V: GPU timing
// side-channel attacks that ride on the NoC's non-uniform latency, and
// the random thread-block scheduling defence.
//
// Usage:
//
//	attack -kind aes -sched static -samples 15000
//	attack -kind aes -sched random
//	attack -kind rsa -sched static
//	attack -kind placement -gpu a100
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gpunoc/internal/bandwidth"
	"gpunoc/internal/gpu"
	"gpunoc/internal/kernel"
	"gpunoc/internal/rsa"
	"gpunoc/internal/sidechannel"
)

func main() {
	var (
		kind    = flag.String("kind", "aes", "aes | rsa | placement | covert")
		sched   = flag.String("sched", "static", "static | random thread-block scheduling")
		gpuName = flag.String("gpu", "", "GPU generation (defaults: aes=v100, rsa=a100, placement=a100)")
		samples = flag.Int("samples", 15000, "aes: timing samples to collect")
		nBytes  = flag.Int("bytes", 4, "aes: key bytes to recover")
		seed    = flag.Int64("seed", 5, "random seed")
	)
	flag.Parse()

	defaults := map[string]string{"aes": "v100", "rsa": "a100", "placement": "a100", "covert": "v100"}
	name := *gpuName
	if name == "" {
		name = defaults[*kind]
	}
	cfg, err := gpu.ByName(name)
	if err != nil {
		fatal(err)
	}
	dev, err := gpu.New(cfg)
	if err != nil {
		fatal(err)
	}

	scheduler := func(fixed []int) kernel.Scheduler {
		switch *sched {
		case "random":
			rng := rand.New(rand.NewSource(*seed + 1))
			return kernel.RandomScheduler{Rand: rng.Uint64}
		default:
			if len(fixed) > 0 {
				return kernel.ListScheduler{SMs: fixed}
			}
			return kernel.StaticScheduler{}
		}
	}

	switch *kind {
	case "aes":
		key := []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
		m, err := kernel.NewMachine(dev, scheduler(nil), kernel.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		victim, err := sidechannel.NewAESVictim(m, key)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("collecting %d timing samples under %s scheduling on %s...\n", *samples, *sched, cfg.Name)
		obs, err := sidechannel.CollectAESSamples(victim, *samples, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fatal(err)
		}
		truth := victim.Key().LastRoundKey()
		hits := 0
		for j := 0; j < *nBytes; j++ {
			r, err := sidechannel.RecoverAESKeyByte(obs, j, 32)
			if err != nil {
				fatal(err)
			}
			hit := r.Best == truth[j]
			if hit {
				hits++
			}
			fmt.Printf("  key byte %2d: recovered %02x (truth %02x) corr %.3f margin %.3f -> %v\n",
				j, r.Best, truth[j], r.Correlations[r.Best], r.Margin, hit)
		}
		fmt.Printf("recovered %d/%d last-round key bytes\n", hits, *nBytes)

	case "rsa":
		if cfg.Partitions < 2 {
			fatal(fmt.Errorf("the RSA demo models the two-SM square kernel on a partitioned GPU; use -gpu a100 or h100"))
		}
		opts := kernel.DefaultOptions()
		opts.GridSync = true
		m, err := kernel.NewMachine(dev, scheduler([]int{0, cfg.GPCs}), opts)
		if err != nil {
			fatal(err)
		}
		timer := rsa.NewGPUTimer(m)
		rng := rand.New(rand.NewSource(*seed))
		ones := []int{8, 16, 24, 32, 40, 48, 56}
		calib, err := sidechannel.CollectRSATimings(timer, 64, ones, 4, rng)
		if err != nil {
			fatal(err)
		}
		test, err := sidechannel.CollectRSATimings(timer, 64, ones, 2, rng)
		if err != nil {
			fatal(err)
		}
		fit, mae, err := sidechannel.EvaluateRSAAttack(calib, test)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s scheduling on %s:\n", *sched, cfg.Name)
		fmt.Printf("  timing model: T = %.0f*ones + %.0f cycles (fit R = %.4f)\n", fit.Slope, fit.Intercept, fit.R)
		fmt.Printf("  ones-count inference error: %.2f bits (static should be <1, random >>1)\n", mae)

	case "placement":
		var sms []int
		perGPC := 2
		for g := 0; g < cfg.GPCs; g++ {
			for i := 0; i < perGPC; i++ {
				sms = append(sms, i*cfg.GPCs+g)
			}
		}
		clusters, err := sidechannel.ClusterSMsByLatency(dev, sms, 16, 0.99)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reverse-engineered placement of %d SMs on %s via latency correlation:\n", len(sms), cfg.Name)
		for i, cl := range clusters {
			fmt.Printf("  group %d:", i)
			for _, sm := range cl {
				fmt.Printf(" SM%d(GPC%d)", sm, dev.GPCOf(sm))
			}
			fmt.Println()
		}

	case "covert":
		eng, err := bandwidth.NewEngine(dev)
		if err != nil {
			fatal(err)
		}
		g := cfg.GPCs
		trojan := []int{0, g, 2 * g, 3 * g}
		spy := []int{1, g + 1, 2*g + 1, 3*g + 1}
		ch, err := sidechannel.NewCovertChannel(eng, 3, trojan, spy)
		if err != nil {
			fatal(err)
		}
		margin, err := ch.Calibrate()
		if err != nil {
			fatal(err)
		}
		ber, err := ch.BitErrorRate(128, uint64(*seed))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("covert channel over L2 slice 3 on %s:\n", cfg.Name)
		fmt.Printf("  trojan SMs %v, spy SMs %v\n", trojan, spy)
		fmt.Printf("  contention margin: %.1f GB/s\n", margin)
		fmt.Printf("  128 bits transmitted, bit error rate %.3f\n", ber)
		secret := cfg.L2Slices / 2
		var victim []bandwidth.Flow
		for _, sm := range trojan {
			victim = append(victim, bandwidth.Flow{SM: sm, Slices: []int{secret}})
		}
		located, err := sidechannel.LocateVictimSlice(eng, victim, spy)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  access-pattern attack: victim on slice %d, attacker located slice %d\n", secret, located)

	default:
		fatal(fmt.Errorf("unknown attack kind %q", *kind))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attack:", err)
	os.Exit(1)
}
