// Command nocfuzz is the deterministic fuzz driver for the NoC
// simulators: it sweeps seeded configurations and traffic schedules
// through internal/simcheck's invariant auditors, shrinks any failing
// case to a minimal schedule, and prints a compilable reproducer.
//
//	nocfuzz -seeds 64 -budget 30s      # the CI sweep: exit 0 iff clean
//	nocfuzz -break-invariant           # plant a violation; must exit 1
//
// Exit status: 0 when every case runs clean, 1 when any invariant is
// violated (or, under -break-invariant, when the planted violation is
// caught — the expected outcome; a 0 there means the harness is dead).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gpunoc/internal/noc"
	"gpunoc/internal/simcheck"
)

func main() {
	var (
		seeds          = flag.Int("seeds", 64, "number of seeded cases to run")
		base           = flag.Int64("base", 1, "first seed of the sweep")
		budget         = flag.Duration("budget", 30*time.Second, "wall-clock budget for the sweep (0 = unlimited)")
		breakInvariant = flag.Bool("break-invariant", false, "sabotage the audit bookkeeping; the run must detect it and exit non-zero")
		verbose        = flag.Bool("v", false, "report every case, not just failures")
	)
	flag.Parse()

	if *breakInvariant {
		os.Exit(runBreakInvariant())
	}
	os.Exit(runSweep(*seeds, *base, *budget, *verbose))
}

// runSweep executes the differential oracles once, then the seeded
// case sweep. The wall clock (banned inside the model by the seedflow
// analyzer, fine here in cmd/) only bounds how MANY cases run; it
// never influences what any case does.
func runSweep(seeds int, base int64, budget time.Duration, verbose bool) int {
	start := time.Now()
	if code := runOracles(verbose); code != 0 {
		return code
	}
	ran := 0
	for s := base; s < base+int64(seeds); s++ {
		if budget > 0 && time.Since(start) > budget {
			fmt.Printf("budget %v exhausted after %d/%d cases; passing on what ran\n", budget, ran, seeds)
			break
		}
		c := simcheck.GenCase(s)
		rep, err := simcheck.RunCase(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocfuzz: seed %d: %v\n", s, err)
			return 1
		}
		ran++
		if verbose {
			fmt.Printf("seed %d: kind=%s injections=%d cycles=%d violations=%d\n",
				s, c.Kind, len(c.Injections), rep.Cycles, len(rep.Violations))
		}
		if !rep.Ok() {
			reportFailure(c, rep)
			return 1
		}
	}
	fmt.Printf("nocfuzz: %d cases clean (oracles + seeds %d..%d)\n", ran, base, base+int64(ran)-1)
	return 0
}

// runOracles runs the differential oracles on fixed configurations:
// zero-load latency against the analytical model, arbiter equivalence
// at zero contention, and replay determinism.
func runOracles(verbose bool) int {
	meshCfg := noc.MeshConfig{Width: 4, Height: 4, BufferFlits: 2, Arbiter: noc.RoundRobin}
	v, err := simcheck.ZeroLoadLatency(meshCfg, []int{1, 3})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocfuzz: zero-load oracle: %v\n", err)
		return 1
	}
	if len(v) == 0 {
		v, err = simcheck.ArbiterLowLoadEquivalence(meshCfg, 11, 48)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocfuzz: arbiter-equivalence oracle: %v\n", err)
			return 1
		}
	}
	if len(v) == 0 {
		steps := [][]uint64{{0x1000, 0x2080, 0x40100}, {}, {0x8000, 0x8080}}
		cfg := noc.ReplayConfig{
			Mesh:   noc.MeshConfig{Width: 4, Height: 4, BufferFlits: 4, Arbiter: noc.RoundRobin},
			PortOf: noc.HashedPortMapping(4),
		}
		v, err = simcheck.ReplayDeterminism(cfg, steps, 3)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nocfuzz: replay oracle: %v\n", err)
			return 1
		}
	}
	if len(v) > 0 {
		fmt.Println("oracle violations:")
		for _, viol := range v {
			fmt.Printf("  %s\n", viol)
		}
		return 1
	}
	if verbose {
		fmt.Println("oracles clean: zero-load latency, arbiter equivalence, replay determinism")
	}
	return 0
}

// reportFailure shrinks a failing case and prints the violations plus
// a compilable reproducer for the minimal schedule.
func reportFailure(c simcheck.Case, rep *simcheck.Report) {
	fmt.Printf("seed %d violated %d invariant(s):\n", c.Seed, len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  %s\n", v)
	}
	shrunk := simcheck.Shrink(c)
	srep, err := simcheck.RunCase(shrunk)
	if err != nil || srep.Ok() {
		// Shrinking must never lose the failure; fall back to the
		// original case if it somehow did.
		shrunk = c
	}
	fmt.Printf("shrunk to %d injection(s); reproducer:\n\n%s\n", len(shrunk.Injections), simcheck.Reproducer(shrunk))
}

// runBreakInvariant plants a bookkeeping corruption in a fixed case
// and expects the harness to catch it. Exit 1 (violations detected)
// is the healthy outcome: CI asserts this mode fails, so a clean exit
// here means the harness lost its teeth.
func runBreakInvariant() int {
	c := simcheck.GenCase(1)
	for c.Kind != "mesh" {
		c = simcheck.GenCase(c.Seed + 1)
	}
	c.Sabotage = simcheck.SabotageDoubleTail
	rep, err := simcheck.RunCase(c)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nocfuzz: break-invariant run: %v\n", err)
		return 1
	}
	if rep.Ok() {
		fmt.Println("break-invariant: planted corruption went UNDETECTED; the harness is dead")
		return 0 // CI asserts non-zero, so this surfaces as a CI failure
	}
	fmt.Printf("break-invariant: planted corruption detected (%d violations), e.g. %s\n",
		len(rep.Violations), rep.Violations[0])
	return 1
}
