// Command tracecheck validates a Chrome trace-event JSON file, such as
// the one nocchar -trace writes: the file must parse as the trace-event
// object form ({"traceEvents": [...]}), and every event must carry the
// fields chrome://tracing and Perfetto require for its phase. CI runs it
// over freshly generated traces so a malformed emitter fails the build
// rather than a later manual load.
//
// Usage:
//
//	tracecheck trace.json [more.json ...]
//
// Exits 0 and prints one summary line per file when every file is
// valid; exits 1 with a diagnostic on the first violation.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// traceFile is the object form of the trace-event format.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// traceEvent carries the fields tracecheck validates; unknown fields are
// permitted (the format is open-ended).
type traceEvent struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Ts   *float64        `json:"ts"`
	Pid  *int64          `json:"pid"`
	Tid  *int64          `json:"tid"`
	Dur  *float64        `json:"dur"`
	Args json.RawMessage `json:"args"`
}

// validPhases lists the phases the obs tracer emits; anything else in a
// file we generated indicates emitter drift.
var validPhases = map[string]bool{"M": true, "i": true, "C": true, "X": true}

func checkFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return "", fmt.Errorf("%s: not valid trace JSON: %w", path, err)
	}
	pids := map[int64]bool{}
	named := map[int64]bool{}
	for i, e := range tf.TraceEvents {
		where := fmt.Sprintf("%s: event %d (%q)", path, i, e.Name)
		if e.Name == "" {
			return "", fmt.Errorf("%s: missing name", where)
		}
		if !validPhases[e.Ph] {
			return "", fmt.Errorf("%s: unexpected phase %q", where, e.Ph)
		}
		if e.Pid == nil {
			return "", fmt.Errorf("%s: missing pid", where)
		}
		pids[*e.Pid] = true
		if e.Ph == "M" {
			// Metadata events name the process; everything else needs a
			// timestamp and thread.
			named[*e.Pid] = true
			continue
		}
		if e.Ts == nil || *e.Ts < 0 {
			return "", fmt.Errorf("%s: missing or negative ts", where)
		}
		if e.Tid == nil {
			return "", fmt.Errorf("%s: missing tid", where)
		}
		if e.Ph == "X" && (e.Dur == nil || *e.Dur < 0) {
			return "", fmt.Errorf("%s: complete event missing or negative dur", where)
		}
	}
	for pid := range pids {
		if !named[pid] {
			return "", fmt.Errorf("%s: pid %d has no process_name metadata", path, pid)
		}
	}
	return fmt.Sprintf("%s: ok (%d events, %d processes)", path, len(tf.TraceEvents), len(pids)), nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [more.json ...]")
		os.Exit(1)
	}
	for _, path := range os.Args[1:] {
		summary, err := checkFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		fmt.Println(summary)
	}
}
